package faults

import (
	"os"
	"time"
)

// File is the errfs wrapper: an *os.File whose operations pass through
// named failpoints first. A wrapped file named "log" checks log_read,
// log_write, log_sync, log_truncate and log_close; the store wraps its
// segment files so chaos tests can fail, delay, tear or crash any disk
// operation without touching the production code path (which, with a
// nil Set, pays one nil check per op).
type File struct {
	f    *os.File
	set  *Set
	name string
}

// WrapFile wraps f so every operation checks the failpoint named
// "<name>_<op>" on set first.
func WrapFile(f *os.File, set *Set, name string) *File {
	return &File{f: f, set: set, name: name}
}

// Unwrap returns the underlying *os.File (locking needs the real fd).
func (w *File) Unwrap() *os.File { return w.f }

func (w *File) ReadAt(p []byte, off int64) (int, error) {
	if err := w.set.Check(w.name + "_read"); err != nil {
		return 0, err
	}
	return w.f.ReadAt(p, off)
}

// writeCheck handles the write-point actions, including torn writes:
// when the armed rule is ActTorn, half the buffer lands on disk and
// then the wrapper panics with a Crash — the disk state of a power
// loss mid-append.
func (w *File) writeCheck(p []byte, write func([]byte) (int, error)) (int, error) {
	r := w.set.trigger(w.name + "_write")
	if r == nil {
		return write(p)
	}
	switch r.Action {
	case ActError:
		return 0, &os.PathError{Op: "write", Path: w.f.Name(), Err: ErrInjected}
	case ActCrash:
		panic(Crash{Point: w.name + "_write"})
	case ActSleep:
		time.Sleep(r.Delay)
		return write(p)
	case ActTorn:
		write(p[:len(p)/2])
		panic(Crash{Point: w.name + "_write"})
	}
	return write(p)
}

func (w *File) WriteAt(p []byte, off int64) (int, error) {
	return w.writeCheck(p, func(b []byte) (int, error) { return w.f.WriteAt(b, off) })
}

func (w *File) Write(p []byte) (int, error) {
	return w.writeCheck(p, w.f.Write)
}

func (w *File) Sync() error {
	if err := w.set.Check(w.name + "_sync"); err != nil {
		return err
	}
	return w.f.Sync()
}

func (w *File) Truncate(size int64) (err error) {
	if err := w.set.Check(w.name + "_truncate"); err != nil {
		return err
	}
	return w.f.Truncate(size)
}

func (w *File) Stat() (os.FileInfo, error) { return w.f.Stat() }

func (w *File) Close() error {
	if err := w.set.Check(w.name + "_close"); err != nil {
		return err
	}
	return w.f.Close()
}
