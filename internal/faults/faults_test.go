package faults

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestNilSetIsFree(t *testing.T) {
	var s *Set
	if err := s.Check("anything"); err != nil {
		t.Fatalf("nil set injected: %v", err)
	}
	if s.Hits("anything") != 0 || s.Points() != nil {
		t.Fatal("nil set reported state")
	}
	s.Fail("x").CrashAt("y").Sleep("z", time.Second) // all no-ops
}

func TestErrorInjection(t *testing.T) {
	s := New().Add(Rule{Point: "op", Action: ActError, After: 2})
	for i := 0; i < 2; i++ {
		if err := s.Check("op"); err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
	}
	err := s.Check("op")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("deferred rule did not fire: %v", err)
	}
	if s.Hits("op") != 3 {
		t.Fatalf("hits = %d, want 3", s.Hits("op"))
	}
}

func TestTimesBoundsFiring(t *testing.T) {
	s := New().Add(Rule{Point: "op", Action: ActError, Times: 1})
	if err := s.Check("op"); !errors.Is(err, ErrInjected) {
		t.Fatal("first hit did not fire")
	}
	if err := s.Check("op"); err != nil {
		t.Fatalf("exhausted rule still firing: %v", err)
	}
}

func TestCrashPanics(t *testing.T) {
	s := New().CrashAt("op")
	defer func() {
		c, ok := AsCrash(recover())
		if !ok || c.Point != "op" {
			t.Fatalf("recovered %v, want Crash at op", c)
		}
	}()
	s.Check("op")
	t.Fatal("crash point did not panic")
}

func TestSleepDelays(t *testing.T) {
	s := New().Sleep("op", 30*time.Millisecond)
	start := time.Now()
	if err := s.Check("op"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("check returned after %v, want >= 30ms", d)
	}
}

func TestParse(t *testing.T) {
	s, err := Parse("a=err, b@2=crash, c=sleep:50ms, d=torn")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "b", "c", "d"}
	got := s.Points()
	if len(got) != len(want) {
		t.Fatalf("points %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points %v, want %v", got, want)
		}
	}
	if err := s.Check("a"); !errors.Is(err, ErrInjected) {
		t.Fatal("parsed err rule did not fire")
	}
	if err := s.Check("b"); err != nil {
		t.Fatal("skip count ignored")
	}

	if s, err := Parse("  "); s != nil || err != nil {
		t.Fatalf("empty spec: %v %v", s, err)
	}
	for _, bad := range []string{"noaction", "p=warp", "p=sleep:xx", "p@-1=err", "=err"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted", bad)
		}
	}
}

func TestFileWrapperInjects(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	s := New().Fail("log_sync")
	w := WrapFile(f, s, "log")
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync fault not injected: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := w.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("read through wrapper: %q %v", buf, err)
	}
	if s.Hits("log_write") != 1 || s.Hits("log_read") != 1 || s.Hits("log_sync") != 1 {
		t.Fatalf("op hits not counted: write=%d read=%d sync=%d",
			s.Hits("log_write"), s.Hits("log_read"), s.Hits("log_sync"))
	}
}

// TestFileWrapperTornWrite: a torn write lands exactly half the buffer
// and then crashes — the on-disk signature of a power loss mid-append.
func TestFileWrapperTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := WrapFile(f, New().Add(Rule{Point: "log_write", Action: ActTorn}), "log")

	func() {
		defer func() {
			if _, ok := AsCrash(recover()); !ok {
				t.Fatal("torn write did not crash")
			}
		}()
		w.WriteAt([]byte("0123456789"), 0)
	}()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("torn write left %q, want the first half", b)
	}
}
