// Package ids provides deterministic pseudo-randomness and sparse,
// non-consecutive node identifiers for the id-only model simulations.
//
// Every experiment in this repository is seeded, so a run is exactly
// reproducible from its (experiment, seed) pair. The generator is a
// SplitMix64, which is small, fast, and has well-understood statistical
// behaviour — more than enough for workload generation (it is not a
// cryptographic generator and is not used as one).
package ids

// Rand is a deterministic SplitMix64 pseudo-random generator.
// The zero value is a valid generator seeded with 0.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("ids: Intn with non-positive n")
	}
	// Rejection sampling to avoid modulo bias.
	bound := uint64(n)
	threshold := -bound % bound // (2^64 - bound) % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a pseudo-random boolean with probability p of true.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Split returns a new generator derived from this one, so that parallel
// components can draw independent streams without sharing state.
func (r *Rand) Split() *Rand {
	return &Rand{state: r.Uint64()}
}

// Shuffle pseudo-randomly permutes the first n elements using swap,
// in the style of rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
