package ids

import "sort"

// ID is a node identifier in the id-only model: unique but not
// necessarily consecutive. The zero value is reserved by the simulator
// as the broadcast address, so generated identifiers are always >= 1.
type ID uint64

// Sparse returns n unique identifiers drawn pseudo-randomly from a
// space much larger than n, so that the identifiers are non-consecutive
// with overwhelming probability — the regime the paper targets (nodes
// cannot enumerate "the first f+1 ids"). The result is sorted.
func Sparse(r *Rand, n int) []ID {
	if n < 0 {
		panic("ids: Sparse with negative n")
	}
	seen := make(map[ID]bool, n)
	out := make([]ID, 0, n)
	for len(out) < n {
		// Keep ids in a readable range for traces while still sparse.
		id := ID(1 + r.Uint64()%uint64(1<<40))
		if id == 0 || seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Consecutive returns the identifiers 1..n. The classical baselines
// (phase king and friends) assume consecutive identifiers; the id-only
// algorithms must not rely on this and are tested with Sparse ids.
func Consecutive(n int) []ID {
	out := make([]ID, n)
	for i := range out {
		out[i] = ID(i + 1)
	}
	return out
}

// Sample returns k distinct elements chosen pseudo-randomly from pool.
// It panics if k > len(pool).
func Sample(r *Rand, pool []ID, k int) []ID {
	if k > len(pool) {
		panic("ids: Sample k > len(pool)")
	}
	cp := make([]ID, len(pool))
	copy(cp, pool)
	r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	out := cp[:k]
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortIDs sorts a slice of IDs in increasing order, in place, and
// returns it for convenience.
func SortIDs(s []ID) []ID {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s
}
