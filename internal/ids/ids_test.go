package ids_test

import (
	"testing"
	"testing/quick"

	"idonly/internal/ids"
)

func TestRandDeterminism(t *testing.T) {
	a, b := ids.NewRand(7), ids.NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandSeedsDiffer(t *testing.T) {
	a, b := ids.NewRand(1), ids.NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 100 draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := ids.NewRand(3)
	f := func(n uint16) bool {
		bound := int(n%1000) + 1
		v := r.Intn(bound)
		return v >= 0 && v < bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) must panic")
		}
	}()
	ids.NewRand(1).Intn(0)
}

func TestIntnRoughlyUniform(t *testing.T) {
	r := ids.NewRand(5)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		if c < draws/n*8/10 || c > draws/n*12/10 {
			t.Errorf("value %d drawn %d times, expected ~%d", v, c, draws/n)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := ids.NewRand(9)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := ids.NewRand(11)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := ids.NewRand(13)
	f := func(n uint8) bool {
		size := int(n%50) + 1
		p := r.Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseUniqueSortedNonZero(t *testing.T) {
	r := ids.NewRand(17)
	f := func(n uint8) bool {
		size := int(n % 200)
		out := ids.Sparse(r, size)
		if len(out) != size {
			return false
		}
		for i, id := range out {
			if id == 0 {
				return false
			}
			if i > 0 && out[i-1] >= id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSparseNonConsecutive(t *testing.T) {
	// The whole point of sparse ids: with a 2^40 space and 100 draws,
	// consecutive pairs are essentially impossible.
	out := ids.Sparse(ids.NewRand(19), 100)
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1]+1 {
			t.Fatalf("consecutive ids %d, %d — astronomically unlikely, generator broken", out[i-1], out[i])
		}
	}
}

func TestConsecutive(t *testing.T) {
	out := ids.Consecutive(5)
	for i, id := range out {
		if id != ids.ID(i+1) {
			t.Fatalf("Consecutive(5)[%d] = %d", i, id)
		}
	}
}

func TestSampleSubset(t *testing.T) {
	r := ids.NewRand(23)
	pool := ids.Sparse(r, 20)
	poolSet := make(map[ids.ID]bool)
	for _, id := range pool {
		poolSet[id] = true
	}
	got := ids.Sample(r, pool, 7)
	if len(got) != 7 {
		t.Fatalf("Sample returned %d", len(got))
	}
	seen := make(map[ids.ID]bool)
	for _, id := range got {
		if !poolSet[id] || seen[id] {
			t.Fatalf("Sample produced %d (dup or out of pool)", id)
		}
		seen[id] = true
	}
	// The original pool must be untouched.
	for i, id := range ids.SortIDs(pool) {
		if pool[i] != id {
			t.Fatal("Sample mutated its pool")
		}
	}
}

func TestSamplePanicsWhenTooLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(k > len) must panic")
		}
	}()
	ids.Sample(ids.NewRand(1), []ids.ID{1, 2}, 3)
}
