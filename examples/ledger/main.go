// Ledger: a permissionless ordered event log built on the dynamic
// total-ordering protocol (Algorithm 6) — the paper's blockchain-style
// motivation. Participants join and leave while the system runs,
// nobody ever knows n or f, a Byzantine member equivocates events, and
// yet every correct participant sees the same totally ordered ledger
// prefix.
//
// Run with:
//
//	go run ./examples/ledger
package main

import (
	"fmt"

	"idonly/internal/adversary"
	"idonly/internal/core/dynamic"
	"idonly/internal/ids"
	"idonly/internal/sim"
)

func main() {
	const (
		founders = 6 // 5 correct + 1 Byzantine
		rounds   = 70
		seed     = 99
	)

	rng := ids.NewRand(seed)
	all := ids.Sparse(rng, founders)
	correct := all[:founders-1]
	faulty := all[founders-1:]

	// Each correct founder submits a transaction every few rounds; one
	// founder retires at round 20.
	var nodes []*dynamic.Node
	var procs []sim.Process
	for i, id := range correct {
		witness := make(map[int][]string)
		for r := 2; r <= rounds; r += len(correct) {
			witness[r+i] = []string{fmt.Sprintf("tx{from:%d,seq:%d}", i, r+i)}
		}
		leaveAt := 0
		if i == len(correct)-1 {
			leaveAt = 20
		}
		nd := dynamic.New(dynamic.Config{ID: id, Founders: all, Witness: witness, LeaveAt: leaveAt})
		nodes = append(nodes, nd)
		procs = append(procs, nd)
	}

	// The Byzantine founder reports conflicting transactions to the two
	// halves of the system every third round.
	adv := adversary.DynEquivEvent{All: all, Every: 3}

	runner := sim.NewRunner(sim.Config{MaxRounds: rounds}, procs, faulty, adv)

	// A new participant joins the open system at round 25 and submits
	// its own transactions from round 30.
	joinID := ids.Sparse(ids.NewRand(seed+1), 1)[0]
	joinWitness := make(map[int][]string)
	for r := 30; r <= rounds; r += 4 {
		joinWitness[r] = []string{fmt.Sprintf("tx{from:joiner,seq:%d}", r)}
	}
	joiner := dynamic.New(dynamic.Config{ID: joinID, Witness: joinWitness})
	runner.ScheduleJoin(25, joiner)

	runner.Run(nil)

	chain := nodes[0].Chain()
	fmt.Printf("ledger after %d rounds (%d entries, final up to round %d):\n",
		rounds, len(chain), nodes[0].FinalRound())
	for _, e := range chain {
		fmt.Printf("  [round %2d] witness %12d: %s\n", e.Session, e.Node, e.M)
	}

	// Every correct stayer and the joiner agree on the overlap.
	fmt.Println("\nconsistency:")
	for _, nd := range nodes[:len(nodes)-1] {
		fmt.Printf("  node %12d: %d entries, final round %d\n",
			nd.ID(), len(nd.Chain()), nd.FinalRound())
	}
	fmt.Printf("  joiner %11d: %d entries, final round %d\n",
		joiner.ID(), len(joiner.Chain()), joiner.FinalRound())
	leaver := nodes[len(nodes)-1]
	fmt.Printf("  leaver %11d: left=%v (its pre-departure txs remain in the ledger)\n",
		leaver.ID(), leaver.Left())
}
