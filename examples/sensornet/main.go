// Sensornet: a wireless sensor network fusing temperature readings by
// iterated approximate agreement, with faulty sensors feeding extreme
// values to different halves of the network — the paper's motivating
// scenario of a network whose size and failure count nobody knows.
//
// Each iteration every sensor broadcasts its current estimate, trims
// the ⌊nv/3⌋ most extreme values it received, and moves to the
// midpoint of the rest. The spread of correct estimates at least
// halves per iteration (Theorem 4), no matter what the liars send.
//
// Run with:
//
//	go run ./examples/sensornet
package main

import (
	"fmt"
	"math"

	"idonly/internal/adversary"
	"idonly/internal/core/approx"
	"idonly/internal/ids"
	"idonly/internal/sim"
)

func main() {
	const (
		n          = 13
		f          = 4
		iterations = 12
		seed       = 7
	)

	rng := ids.NewRand(seed)
	all := ids.Sparse(rng, n)
	correct := all[:n-f]
	faulty := all[n-f:]

	// True temperature ~21.5°C; each correct sensor reads with noise.
	var sensors []*approx.Iterated
	var procs []sim.Process
	fmt.Println("initial readings:")
	for i, id := range correct {
		reading := 21.5 + 3.0*(rng.Float64()-0.5) + float64(i%3)
		fmt.Printf("  sensor %12d reads %.3f°C\n", id, reading)
		s := approx.NewIterated(id, reading, iterations)
		sensors = append(sensors, s)
		procs = append(procs, s)
	}

	// Faulty sensors report -40°C to half the network and +85°C to the
	// other half, trying to pull the fused estimate apart.
	adv := adversary.ApproxOutlier{Low: -40, High: 85, All: all}

	runner := sim.NewRunner(sim.Config{StopWhenAllDecided: true}, procs, faulty, adv)
	runner.Run(nil)

	fmt.Println("\nspread of correct estimates per iteration:")
	for k := 0; k < iterations; k++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, s := range sensors {
			v := s.History[k]
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		fmt.Printf("  iter %2d: spread %.6f°C  [%.4f, %.4f]\n", k+1, hi-lo, lo, hi)
	}

	fmt.Println("\nfinal fused estimates:")
	for _, s := range sensors {
		fmt.Printf("  sensor %12d: %.5f°C\n", s.ID(), s.Value())
	}
}
