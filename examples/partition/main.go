// Partition: the Section IX impossibility results, run as executions.
//
// Two protocols that "should" work without synchrony are driven through
// the paper's constructions:
//
//   - Lemma 14 (asynchrony): a gossip protocol that decides when its
//     view of the participant set closes, run under a partition whose
//     cross delays are unbounded — both halves terminate with opposite
//     decisions;
//   - Lemma 15 (semi-synchrony): a timeout protocol that guesses the
//     delay bound, run against a true bound just beyond its horizon.
//
// Run with:
//
//	go run ./examples/partition
package main

import (
	"fmt"

	"idonly/internal/async"
	"idonly/internal/ids"
)

func main() {
	rng := ids.NewRand(123)
	all := ids.Sparse(rng, 8)
	groupA := make(map[ids.ID]bool)
	for _, id := range all[:4] {
		groupA[id] = true
	}

	fmt.Println("=== Lemma 14: asynchronous partition ===")
	var gossips []*async.ClosureGossip
	var procs []async.Process
	for i, id := range all {
		v := 0
		if groupA[id] {
			v = 1
		}
		_ = i
		g := async.NewClosureGossip(id, v)
		gossips = append(gossips, g)
		procs = append(procs, g)
	}
	// Cross-partition messages are delayed forever (delay < 0 = dropped).
	sched := async.NewScheduler(procs, async.PartitionDelay(groupA, 0.5, -1))
	sched.Run(1e6)
	for _, g := range gossips {
		side := "B"
		if groupA[g.ID()] {
			side = "A"
		}
		fmt.Printf("  node %12d (partition %s, input %d) decided %d\n",
			g.ID(), side, boolToInt(groupA[g.ID()]), g.Value())
	}
	fmt.Println("  → the two partitions are indistinguishable from complete systems;")
	fmt.Println("    they decide opposite values. No asynchronous protocol can avoid this")
	fmt.Println("    when n and f are unknown (Lemma 14).")

	fmt.Println("\n=== Lemma 15: semi-synchronous with unknown Δ ===")
	for _, trueDelta := range []float64{1.0, 100.0} {
		var quorums []*async.TimeoutQuorum
		var qprocs []async.Process
		for _, id := range all {
			v := 0
			if groupA[id] {
				v = 1
			}
			q := async.NewTimeoutQuorum(id, v, 2.0) // node's guess: Δ ≤ 2
			quorums = append(quorums, q)
			qprocs = append(qprocs, q)
		}
		s := async.NewScheduler(qprocs, async.PartitionDelay(groupA, 0.25, trueDelta))
		s.Run(1e6)
		agree := true
		for _, q := range quorums[1:] {
			if q.Value() != quorums[0].Value() {
				agree = false
			}
		}
		fmt.Printf("  true Δ = %-6v guess = 2.0 → agreement: %v\n", trueDelta, agree)
	}
	fmt.Println("  → agreement holds exactly while the unknown bound stays within the")
	fmt.Println("    guessed horizon; the adversary picks Δ afterwards (Lemma 15).")
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
