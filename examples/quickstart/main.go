// Quickstart: binary consensus among 10 nodes with 3 Byzantine
// split-brain attackers, where no node knows n or f.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"idonly/internal/adversary"
	"idonly/internal/core/consensus"
	"idonly/internal/ids"
	"idonly/internal/sim"
)

func main() {
	const (
		n    = 10
		f    = 3
		seed = 2024
	)

	// Sparse, non-consecutive identifiers — the id-only model's regime.
	rng := ids.NewRand(seed)
	all := ids.Sparse(rng, n)
	correct := all[:n-f]
	faulty := all[n-f:]

	// Correct nodes start with a split opinion: 0 or 1.
	var nodes []*consensus.Node
	var procs []sim.Process
	for i, id := range correct {
		nd := consensus.New(id, float64(i%2))
		nodes = append(nodes, nd)
		procs = append(procs, nd)
	}

	// The adversary tells each half of the system a different story at
	// every protocol step — inputs, prefers, strongprefers, and even
	// the coordinator opinion when one of its nodes is selected.
	adv := adversary.ConsSplit{X1: 0, X2: 1, All: all}

	runner := sim.NewRunner(sim.Config{StopWhenAllDecided: true}, procs, faulty, adv)
	metrics := runner.Run(nil)

	fmt.Printf("system: n=%d (unknown to nodes), f=%d (unknown to nodes)\n", n, f)
	fmt.Printf("rounds: %d, messages delivered: %d\n\n", metrics.Rounds, metrics.MessagesDelivered)
	for _, nd := range nodes {
		fmt.Printf("node %12d decided %v in round %d (after %d phases)\n",
			nd.ID(), nd.Value(), nd.DecidedRound(), nd.Phases())
	}

	v := nodes[0].Value()
	for _, nd := range nodes {
		if !nd.Decided() || nd.Value() != v {
			log.Fatal("agreement violated — this must never print")
		}
	}
	fmt.Printf("\nagreement: all correct nodes decided %v\n", v)
}
