// Churn: Algorithm 6 total ordering while participants come and go.
//
// The paper's defining setting is that neither n nor f is known and
// the participant set changes under the protocol's feet. This example
// drives it both ways:
//
//  1. declaratively — a churned Scenario through the parallel scenario
//     engine, with the join/leave schedule resolved from the seed; the
//     run is a pure value, so re-running it (or sharding its rounds)
//     reproduces the identical report;
//  2. by hand — a Runner over dynamic-ordering nodes with an explicit
//     mid-run join, watching the joiner's chain converge onto the
//     founders' (the chain-prefix guarantee of Theorem 6).
//
// Run with:
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"os"

	idonly "idonly"
)

func main() {
	fmt.Println("=== 1. Declarative churn through the scenario engine ===")
	spec := idonly.Scenario{
		Protocol:  idonly.ProtoDynamic,
		Adversary: idonly.AdvSplit, // event-equivocating Byzantine nodes
		N:         10, F: 2,
		Seed: 7,
		Churn: &idonly.ChurnSpec{
			Joins:        2, // two correct nodes join via present/ack
			Leaves:       1, // one founder announces "absent" and drains its sessions
			FaultyJoins:  1, // one faulty node enters mid-run
			FaultyLeaves: 1, // one faulty node is yanked mid-run
		},
	}
	rep := idonly.RunAll([]idonly.Scenario{spec}, idonly.EngineOptions{Workers: 2})
	rep.WriteText(os.Stdout)
	res := rep.Results[0]
	fmt.Printf("  membership %d..%d, %d joins and %d leaves applied\n",
		res.MinMembers, res.PeakMembers, res.Joins, res.Leaves)
	fmt.Printf("  ordering outcome: %s, worst finality lag %d rounds\n", res.Output, res.FinalityLag)
	fmt.Println("  → the decided column reads n/a: an ordering service never terminates,")
	fmt.Println("    it keeps extending the chain (the engine reports its finality lag instead).")

	fmt.Println("\n=== 2. A mid-run join, by hand ===")
	rng := idonly.NewRand(42)
	all := idonly.SparseIDs(rng, 4)
	var founders []*idonly.DynamicNode
	var procs []idonly.Process
	for i, id := range all {
		witness := map[int][]string{}
		for r := 1; r <= 50; r++ {
			if r%len(all) == i {
				witness[r] = []string{fmt.Sprintf("ev-%d-%d", i, r)}
			}
		}
		nd := idonly.NewDynamicOrder(idonly.DynamicConfig{ID: id, Founders: all, Witness: witness})
		founders = append(founders, nd)
		procs = append(procs, nd)
	}
	run := idonly.NewRunner(idonly.Config{MaxRounds: 50}, procs, nil, nil)
	joiner := idonly.NewDynamicOrder(idonly.DynamicConfig{ID: idonly.SparseIDs(idonly.NewRand(99), 1)[0]})
	run.ScheduleJoin(10, joiner) // no Founders: it must discover the system via present/ack
	run.Run(nil)

	fc, jc := founders[0].Chain(), joiner.Chain()
	fmt.Printf("  founder chain: %d ordered events, final through round %d\n",
		len(fc), founders[0].FinalRound())
	fmt.Printf("  joiner chain:  %d ordered events (it joined at round 10, so its chain\n", len(jc))
	fmt.Println("                 starts at its join round — a suffix of the founders')")
	if len(jc) > 0 {
		// The joiner's first session must appear verbatim in the founder's chain.
		matched := false
		for _, e := range fc {
			if e == jc[0] {
				matched = true
				break
			}
		}
		fmt.Printf("  joiner's first event present in founder's chain: %v (chain-prefix, Theorem 6)\n", matched)
	}
}
